// Package trace provides the per-rank time accounting used to reproduce the
// stacked-category plots in the paper's Figures 5 and 6. Every virtual
// second a rank spends is attributed to exactly one category; the harness
// derives "Other" as the gap between job wall time and the accounted
// categories (matching the paper's `time mpirun` minus in-app timers).
//
// trace answers "where did the time go" as aggregates; the ordered record
// of what happened (failure detection, repair, restore, recompute) is the
// complementary internal/obs event log.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Category identifies where a rank's virtual time went. The first group
// mirrors Figure 5's legend; the second group holds MiniMD's per-section
// breakdown from Figure 6.
type Category int

const (
	// AppCompute is time in local application computation.
	AppCompute Category = iota
	// AppMPI is time blocked in MPI calls made by application code.
	AppMPI
	// ResilienceInit is time initializing resilience runtimes (Fenix init,
	// KR context creation, VeloC client startup, communicator repair).
	ResilienceInit
	// CheckpointFunc is synchronous time inside checkpoint functions (the
	// scratch memory copy for VeloC, the buddy exchange for IMR).
	CheckpointFunc
	// DataRecovery is time restoring checkpoint data after a failure.
	DataRecovery
	// Recompute is application time spent redoing work lost to a failure
	// (iterations between the restored checkpoint and the failure point).
	Recompute
	// Other is derived, never recorded directly: job wall time minus all
	// recorded categories (launch/teardown, re-initialization, MPI job
	// startup, idle spares).
	Other

	// ForceCompute is MiniMD's compute-bound force section (Figure 6).
	ForceCompute
	// Neighboring is MiniMD's neighbor-list construction section.
	Neighboring
	// Communicator is MiniMD's communication-bound exchange section.
	Communicator

	numCategories
)

var categoryNames = [...]string{
	AppCompute:     "App compute",
	AppMPI:         "App MPI",
	ResilienceInit: "Resilience Initialization",
	CheckpointFunc: "Checkpoint Function",
	DataRecovery:   "Data Recovery",
	Recompute:      "Recompute",
	Other:          "Other",
	ForceCompute:   "Force Compute",
	Neighboring:    "Neighboring",
	Communicator:   "Communicator",
}

// String returns the human-readable label used in the paper's figures.
func (c Category) String() string {
	if c < 0 || int(c) >= len(categoryNames) {
		return fmt.Sprintf("Category(%d)", int(c))
	}
	return categoryNames[c]
}

// Categories returns all recordable categories in display order.
func Categories() []Category {
	return []Category{
		AppCompute, AppMPI, ResilienceInit, CheckpointFunc,
		DataRecovery, Recompute, Other, ForceCompute, Neighboring, Communicator,
	}
}

// Recorder accumulates per-category virtual seconds for one rank. A Recorder
// is owned by a single rank goroutine and is not safe for concurrent use.
type Recorder struct {
	totals [numCategories]float64
	// section, when set, redirects AppCompute/AppMPI attribution into a
	// MiniMD profiling section (ForceCompute/Neighboring/Communicator).
	section Category
	// recompute, when true, redirects AppCompute into Recompute: the rank
	// is redoing iterations that were already executed before a failure.
	recompute bool
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{section: -1} }

// Add attributes d virtual seconds to category c, honoring any active
// section or recompute redirection for application categories.
func (r *Recorder) Add(c Category, d float64) {
	if d == 0 {
		return
	}
	if d < 0 {
		panic(fmt.Sprintf("trace: negative duration %v for %v", d, c))
	}
	switch c {
	case AppCompute:
		if r.recompute {
			c = Recompute
		} else if r.section >= 0 {
			c = r.section
		}
	case AppMPI:
		if r.recompute {
			c = Recompute
		} else if r.section >= 0 {
			c = r.section
		}
	}
	r.totals[c] += d
}

// AddRaw attributes d seconds to c with no redirection.
func (r *Recorder) AddRaw(c Category, d float64) {
	if d < 0 {
		panic(fmt.Sprintf("trace: negative duration %v for %v", d, c))
	}
	r.totals[c] += d
}

// BeginSection routes subsequent application time into the given MiniMD
// section until EndSection. Sections do not nest.
func (r *Recorder) BeginSection(c Category) {
	if c != ForceCompute && c != Neighboring && c != Communicator {
		panic(fmt.Sprintf("trace: %v is not a profiling section", c))
	}
	r.section = c
}

// EndSection stops section redirection.
func (r *Recorder) EndSection() { r.section = -1 }

// SetRecompute toggles recompute attribution: while enabled, application
// compute time counts as Recompute (work redone after a failure).
func (r *Recorder) SetRecompute(on bool) { r.recompute = on }

// Recomputing reports whether recompute attribution is active.
func (r *Recorder) Recomputing() bool { return r.recompute }

// Move reattributes d seconds from category `from` to category `to`,
// clamped to the amount actually recorded in `from`. Resilience layers use
// it to fold MPI time spent inside their primitives (e.g. the IMR buddy
// exchange) into the category the paper reports it under.
func (r *Recorder) Move(from, to Category, d float64) {
	if d < 0 {
		panic(fmt.Sprintf("trace: negative move %v", d))
	}
	if d > r.totals[from] {
		d = r.totals[from]
	}
	r.totals[from] -= d
	r.totals[to] += d
}

// Get returns the accumulated seconds in category c.
func (r *Recorder) Get(c Category) float64 { return r.totals[c] }

// Total returns the sum over all recorded categories.
func (r *Recorder) Total() float64 {
	var s float64
	for _, v := range r.totals {
		s += v
	}
	return s
}

// Snapshot returns a copy of the per-category totals.
func (r *Recorder) Snapshot() Times {
	var t Times
	copy(t[:], r.totals[:])
	return t
}

// Reset zeroes all totals and clears redirections.
func (r *Recorder) Reset() {
	r.totals = [numCategories]float64{}
	r.section = -1
	r.recompute = false
}

// Times is an immutable per-category snapshot.
type Times [numCategories]float64

// Get returns the seconds recorded in category c.
func (t Times) Get(c Category) float64 { return t[c] }

// Total returns the sum across categories.
func (t Times) Total() float64 {
	var s float64
	for _, v := range t {
		s += v
	}
	return s
}

// Add returns the element-wise sum of two snapshots.
func (t Times) Add(o Times) Times {
	var out Times
	for i := range t {
		out[i] = t[i] + o[i]
	}
	return out
}

// Sub returns the element-wise difference t - o, clamped at zero.
func (t Times) Sub(o Times) Times {
	var out Times
	for i := range t {
		out[i] = t[i] - o[i]
		if out[i] < 0 {
			out[i] = 0
		}
	}
	return out
}

// Scale returns t with every category multiplied by f.
func (t Times) Scale(f float64) Times {
	var out Times
	for i := range t {
		out[i] = t[i] * f
	}
	return out
}

// Max returns the element-wise maximum of two snapshots.
func (t Times) Max(o Times) Times {
	var out Times
	for i := range t {
		out[i] = t[i]
		if o[i] > out[i] {
			out[i] = o[i]
		}
	}
	return out
}

// WithOther returns t with the Other category set to wall - Total(),
// clamped at zero. This mirrors the paper's derivation of "Other" from
// bash-measured mpirun time.
func (t Times) WithOther(wall float64) Times {
	out := t
	out[Other] = 0
	gap := wall - out.Total()
	if gap > 0 {
		out[Other] = gap
	}
	return out
}

// String renders the snapshot as "name=seconds" pairs for debugging.
func (t Times) String() string {
	var parts []string
	for _, c := range Categories() {
		if t[c] != 0 {
			parts = append(parts, fmt.Sprintf("%s=%.4f", c, t[c]))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}
