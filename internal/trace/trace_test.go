package trace

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCategoryString(t *testing.T) {
	cases := map[Category]string{
		AppCompute:     "App compute",
		AppMPI:         "App MPI",
		ResilienceInit: "Resilience Initialization",
		CheckpointFunc: "Checkpoint Function",
		DataRecovery:   "Data Recovery",
		Recompute:      "Recompute",
		Other:          "Other",
		ForceCompute:   "Force Compute",
		Neighboring:    "Neighboring",
		Communicator:   "Communicator",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(c), got, want)
		}
	}
	if got := Category(-1).String(); got != "Category(-1)" {
		t.Errorf("invalid category String() = %q", got)
	}
}

func TestRecorderBasicAccumulation(t *testing.T) {
	r := NewRecorder()
	r.Add(AppCompute, 1.0)
	r.Add(AppCompute, 2.0)
	r.Add(AppMPI, 0.5)
	if got := r.Get(AppCompute); got != 3.0 {
		t.Fatalf("AppCompute = %v, want 3", got)
	}
	if got := r.Get(AppMPI); got != 0.5 {
		t.Fatalf("AppMPI = %v, want 0.5", got)
	}
	if got := r.Total(); got != 3.5 {
		t.Fatalf("Total = %v, want 3.5", got)
	}
}

func TestRecorderZeroIsNoop(t *testing.T) {
	r := NewRecorder()
	r.Add(AppCompute, 0)
	if r.Total() != 0 {
		t.Fatal("zero add changed totals")
	}
}

func TestRecorderNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	NewRecorder().Add(AppCompute, -1)
}

func TestSectionRedirection(t *testing.T) {
	r := NewRecorder()
	r.BeginSection(ForceCompute)
	r.Add(AppCompute, 2)
	r.Add(AppMPI, 1)
	r.EndSection()
	r.Add(AppCompute, 5)
	if got := r.Get(ForceCompute); got != 3 {
		t.Fatalf("ForceCompute = %v, want 3", got)
	}
	if got := r.Get(AppCompute); got != 5 {
		t.Fatalf("AppCompute = %v, want 5", got)
	}
	if got := r.Get(AppMPI); got != 0 {
		t.Fatalf("AppMPI = %v, want 0 (redirected)", got)
	}
}

func TestBeginSectionRejectsNonSection(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BeginSection(AppCompute) did not panic")
		}
	}()
	NewRecorder().BeginSection(AppCompute)
}

func TestRecomputeRedirection(t *testing.T) {
	r := NewRecorder()
	r.SetRecompute(true)
	if !r.Recomputing() {
		t.Fatal("Recomputing() = false after SetRecompute(true)")
	}
	r.Add(AppCompute, 4)
	r.Add(AppMPI, 2)
	r.SetRecompute(false)
	r.Add(AppCompute, 1)
	if got := r.Get(Recompute); got != 6 {
		t.Fatalf("Recompute = %v, want 6 (compute + MPI)", got)
	}
	if got := r.Get(AppCompute); got != 1 {
		t.Fatalf("AppCompute = %v, want 1", got)
	}
}

func TestRecomputeOverridesSection(t *testing.T) {
	r := NewRecorder()
	r.BeginSection(Communicator)
	r.SetRecompute(true)
	r.Add(AppCompute, 2)
	if got := r.Get(Recompute); got != 2 {
		t.Fatalf("Recompute = %v, want 2 (recompute wins over section)", got)
	}
}

func TestAddRawBypassesRedirection(t *testing.T) {
	r := NewRecorder()
	r.SetRecompute(true)
	r.AddRaw(AppCompute, 3)
	if got := r.Get(AppCompute); got != 3 {
		t.Fatalf("AddRaw redirected: AppCompute = %v", got)
	}
}

func TestSnapshotAndReset(t *testing.T) {
	r := NewRecorder()
	r.Add(CheckpointFunc, 1.25)
	snap := r.Snapshot()
	r.Reset()
	if r.Total() != 0 {
		t.Fatal("Reset did not clear totals")
	}
	if snap.Get(CheckpointFunc) != 1.25 {
		t.Fatal("snapshot mutated by reset")
	}
}

func TestTimesArithmetic(t *testing.T) {
	var a, b Times
	a[AppCompute] = 2
	a[AppMPI] = 1
	b[AppCompute] = 0.5
	b[DataRecovery] = 3

	sum := a.Add(b)
	if sum.Get(AppCompute) != 2.5 || sum.Get(DataRecovery) != 3 {
		t.Fatalf("Add wrong: %v", sum)
	}
	diff := a.Sub(b)
	if diff.Get(AppCompute) != 1.5 {
		t.Fatalf("Sub wrong: %v", diff)
	}
	if diff.Get(DataRecovery) != 0 {
		t.Fatal("Sub must clamp at zero")
	}
	sc := a.Scale(2)
	if sc.Get(AppCompute) != 4 || sc.Get(AppMPI) != 2 {
		t.Fatalf("Scale wrong: %v", sc)
	}
	mx := a.Max(b)
	if mx.Get(AppCompute) != 2 || mx.Get(DataRecovery) != 3 {
		t.Fatalf("Max wrong: %v", mx)
	}
}

func TestWithOther(t *testing.T) {
	var a Times
	a[AppCompute] = 3
	a[AppMPI] = 2
	got := a.WithOther(7)
	if got.Get(Other) != 2 {
		t.Fatalf("Other = %v, want 2", got.Get(Other))
	}
	// Wall shorter than accounted: clamp to zero, never negative.
	got = a.WithOther(4)
	if got.Get(Other) != 0 {
		t.Fatalf("Other = %v, want 0", got.Get(Other))
	}
}

func TestWithOtherReplacesPriorOther(t *testing.T) {
	var a Times
	a[Other] = 99
	a[AppCompute] = 1
	got := a.WithOther(3)
	if got.Get(Other) != 2 {
		t.Fatalf("Other = %v, want 2 (prior Other replaced)", got.Get(Other))
	}
}

func TestTimesTotalMatchesSum(t *testing.T) {
	f := func(a, b, c float64) bool {
		a, b, c = math.Abs(a), math.Abs(b), math.Abs(c)
		if math.IsInf(a+b+c, 0) || math.IsNaN(a+b+c) {
			return true
		}
		r := NewRecorder()
		r.Add(AppCompute, a)
		r.Add(AppMPI, b)
		r.Add(CheckpointFunc, c)
		return math.Abs(r.Total()-(a+b+c)) < 1e-9*(1+a+b+c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimesAddCommutative(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		var x, y Times
		x[AppCompute] = a
		y[AppCompute] = b
		return x.Add(y) == y.Add(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCategoriesCoversAll(t *testing.T) {
	if len(Categories()) != int(numCategories) {
		t.Fatalf("Categories() returns %d entries, want %d", len(Categories()), numCategories)
	}
	seen := map[Category]bool{}
	for _, c := range Categories() {
		if seen[c] {
			t.Fatalf("duplicate category %v", c)
		}
		seen[c] = true
	}
}

func TestStringRendersNonZero(t *testing.T) {
	var a Times
	a[AppCompute] = 1
	s := a.String()
	if s == "" {
		t.Fatal("String() empty for non-zero Times")
	}
}
