package veloc_test

import (
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/veloc"
)

// The VeloC workflow: protect regions, checkpoint (synchronous scratch
// copy + asynchronous flush), clobber, restart.
func Example() {
	machine := sim.DefaultMachine()
	machine.NoiseAmplitude = 0
	cl := cluster.New(1, machine)
	w := mpi.NewWorld(cl, 1, 1, false, 1, 0)

	var wg sync.WaitGroup
	wg.Add(1)
	go func(p *mpi.Proc) {
		defer wg.Done()
		client, err := veloc.New(p, veloc.Config{Mode: veloc.Single})
		if err != nil {
			fmt.Println(err)
			return
		}
		state := []byte("iteration 42 state")
		client.Protect(0, veloc.SliceRegion{Buf: &state})

		if err := client.Checkpoint("solver", 42); err != nil {
			fmt.Println(err)
			return
		}
		copy(state, "XXXXXXXXXXXXXXXXXX") // simulate lost progress

		v, err := client.RestartLatest("solver")
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("restored version %d: %s\n", v, state)
	}(w.Proc(0))
	wg.Wait()
	// Output:
	// restored version 42: iteration 42 state
}
