package veloc

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpi"
)

// FuzzDeserialize hardens the checkpoint blob parser against arbitrary
// bytes (e.g. a torn PFS write): it must error, never panic.
func FuzzDeserialize(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{1, 2, 3, 4, 5, 0, 0, 0, 1, 0, 0, 0, 9, 0, 0, 0})
	// A valid blob as seed.
	cl := cluster.New(1, quietMachine())
	w := mpi.NewWorld(cl, 1, 1, false, 1, 0)
	c, err := New(w.Proc(0), Config{Mode: Single})
	if err != nil {
		f.Fatal(err)
	}
	buf := []byte("seed region")
	c.Protect(0, SliceRegion{&buf})
	valid, _ := c.serialize()
	f.Add(valid)

	f.Fuzz(func(t *testing.T, blob []byte) {
		cl := cluster.New(1, quietMachine())
		w := mpi.NewWorld(cl, 1, 1, false, 1, 0)
		cc, err := New(w.Proc(0), Config{Mode: Single})
		if err != nil {
			t.Skip()
		}
		b := make([]byte, 11)
		cc.Protect(0, SliceRegion{&b})
		_ = cc.deserialize(blob) // must not panic
	})
}
