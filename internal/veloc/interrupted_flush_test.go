package veloc

import (
	"bytes"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/trace"
)

// TestRestartSkipsInterruptedFlush pins the node-crash recovery contract:
// a checkpoint whose asynchronous PFS flush was cut short by losing the
// node must not be offered at restart. The metadata may advertise the
// newer version, but restore has to fall back to the latest version whose
// flush actually completed.
func TestRestartSkipsInterruptedFlush(t *testing.T) {
	runRanks(t, 1, func(p *mpi.Proc) error {
		c, err := New(p, Config{Mode: Single})
		if err != nil {
			return err
		}
		buf := []byte("generation-one-data")
		c.Protect(0, SliceRegion{&buf})

		if err := c.Checkpoint("ck", 1); err != nil {
			return err
		}
		// Let version 1's asynchronous flush drain to the PFS.
		p.ChargeTime(trace.AppCompute, 1e6)

		copy(buf, []byte("generation-two-data"))
		if err := c.Checkpoint("ck", 2); err != nil {
			return err
		}
		// The node dies while version 2's flush window is still open: node
		// scratch is gone and the in-flight PFS copy never completes.
		p.CrashNode()

		if c.Available("ck", 2) {
			t.Error("version 2 reported available after its flush was interrupted")
		}
		if !c.Available("ck", 1) {
			t.Error("version 1 (completed flush) should remain available")
		}

		// A restarted process on the replacement node sees only the PFS.
		r, err := New(p, Config{Mode: Single})
		if err != nil {
			return err
		}
		restored := make([]byte, len(buf))
		r.Protect(0, SliceRegion{&restored})
		v, err := r.RestartLatest("ck")
		if err != nil {
			return err
		}
		if v != 1 {
			t.Errorf("restarted from version %d, want 1 (version 2's flush was interrupted)", v)
		}
		if !bytes.Equal(restored, []byte("generation-one-data")) {
			t.Errorf("restored %q, want generation-one data", restored)
		}

		// Recomputing forward must be able to overwrite the interrupted
		// version: a re-written checkpoint 2 becomes the restart point once
		// its flush completes.
		copy(restored, []byte("generation-2b!-data"))
		if err := r.Checkpoint("ck", 2); err != nil {
			return err
		}
		p.ChargeTime(trace.AppCompute, 1e6)
		if !r.Available("ck", 2) {
			t.Error("re-written version 2 should be available after its flush completed")
		}
		v, err = r.RestartLatest("ck")
		if err != nil {
			return err
		}
		if v != 2 {
			t.Errorf("restarted from version %d after rewrite, want 2", v)
		}
		if !bytes.Equal(restored, []byte("generation-2b!-data")) {
			t.Errorf("restored %q, want the recomputed generation-2 data", restored)
		}
		return nil
	})
}

// TestRestartSkipsQueuedAndCancelledFlushes extends the node-crash
// contract to the flush scheduler: when the node dies, the version whose
// flush was in flight is interrupted (as before), a version still queued
// is discarded unstarted, and a version cancelled earlier by coalescing
// never existed on the PFS at all. Restart must fall back past all three
// to the newest version whose flush completed.
func TestRestartSkipsQueuedAndCancelledFlushes(t *testing.T) {
	runRanks(t, 1, func(p *mpi.Proc) error {
		p.World().Cluster().SetFlushPolicy(cluster.FlushPolicy{Window: 1, Coalesce: true})
		c, err := New(p, Config{Mode: Single})
		if err != nil {
			return err
		}
		buf := []byte("generation-zero-data")
		c.Protect(0, SliceRegion{&buf})

		if err := c.Checkpoint("ck", 0); err != nil {
			return err
		}
		// Let version 0's flush drain; the window is free again.
		p.ChargeTime(trace.AppCompute, 1e6)

		// Version 1 starts immediately; versions 2 and 3 arrive while it is
		// still in flight, so 2 queues and is then cancelled by 3's
		// submission (same checkpoint, newer version).
		copy(buf, []byte("generation-one!-data"))
		if err := c.Checkpoint("ck", 1); err != nil {
			return err
		}
		copy(buf, []byte("generation-two!-data"))
		if err := c.Checkpoint("ck", 2); err != nil {
			return err
		}
		copy(buf, []byte("generation-tri!-data"))
		if err := c.Checkpoint("ck", 3); err != nil {
			return err
		}

		// The node dies: version 1's in-flight PFS write never completes,
		// and version 3 is discarded from the queue unstarted.
		p.CrashNode()

		for v := 1; v <= 3; v++ {
			if c.Available("ck", v) {
				t.Errorf("version %d reported available after the node crash", v)
			}
		}
		if !c.Available("ck", 0) {
			t.Error("version 0 (completed flush) should remain available")
		}

		r, err := New(p, Config{Mode: Single})
		if err != nil {
			return err
		}
		restored := make([]byte, len(buf))
		r.Protect(0, SliceRegion{&restored})
		v, err := r.RestartLatest("ck")
		if err != nil {
			return err
		}
		if v != 0 {
			t.Errorf("restarted from version %d, want 0 (1 interrupted, 2 coalesced, 3 discarded)", v)
		}
		if !bytes.Equal(restored, []byte("generation-zero-data")) {
			t.Errorf("restored %q, want generation-zero data", restored)
		}
		return nil
	})
}
