// The VeloC-side flush scheduling policy. The mechanism — a per-node
// bounded window over in-flight flushes with a deadline-ordered,
// coalescible queue — lives in cluster.FlushSubmit; this file computes the
// scheduling inputs (deadline, coalesce key) and emits the scheduler's
// observability: veloc.flush_queued at submission, veloc.flush_start /
// veloc.flush_end stamped with the committed window, and the coalescing
// and queue-wait metrics.
//
// Scheduling is enabled per job through mpi.JobConfig.Flush (the
// -flush-window / -flush-coalesce flags on cmd/heatdis and cmd/minimd);
// with the zero policy Checkpoint keeps the classic unmanaged
// one-flush-per-checkpoint behaviour.
package veloc

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// flushDeadline estimates when the submitted flush must complete to stay
// off the application's critical path: one checkpoint cadence from now,
// i.e. around the rank's next checkpoint commit. The first checkpoint has
// no cadence history and gets an unbounded deadline (lowest priority).
func (c *Client) flushDeadline(now float64) float64 {
	if c.lastCkptAt < 0 {
		return math.Inf(1)
	}
	return now + (now - c.lastCkptAt)
}

// coalesceKey groups flushes that supersede one another: all versions of
// one checkpoint name written by one logical rank.
func (c *Client) coalesceKey(name string) string {
	return fmt.Sprintf("%s/rank%d", name, c.rank)
}

// scheduleFlush submits the checkpoint's PFS flush to the node's flush
// scheduler. now is the submission time (the caller's clock when the
// scratch copy finished).
func (c *Client) scheduleFlush(name string, version, simSize int, now float64) error {
	node := c.p.Node()
	rec := c.p.Obs()
	rank := c.p.Rank()
	key := dataKey(name, version, c.rank)
	req := cluster.FlushRequest{
		Key:         key,
		PFSKey:      key,
		Owner:       rank,
		Deadline:    c.flushDeadline(now),
		CoalesceKey: c.coalesceKey(name),
		Version:     version,
	}
	if c.comm != nil {
		// Checkpoints are committed collectively, so every rank of the
		// communicator flushes this version together: fixing the PFS
		// congestion share to the comm size keeps flush windows a pure
		// function of virtual time (replay-determinism under storm cells
		// whose synchronized ranks would otherwise race for bandwidth
		// shares in arrival order).
		req.Share = c.comm.Size()
	}
	if rec.Enabled() {
		// Emitted before submission so flush_queued orders ahead of the
		// flush_start that a free window slot triggers immediately.
		rec.Emit(now, rank, obs.LayerVeloC, obs.EvVeloCFlushQueued,
			obs.KV("name", name), obs.KV("version", version),
			obs.KV("bytes", simSize), obs.KV("deadline", req.Deadline),
			obs.KV("queue_depth", node.QueuedFlushes()+node.InFlightAt(now)))
		reg := rec.Registry()
		req.OnStart = func(start, end float64, depthAtEnd int) {
			// Stamped with the committed window's virtual times, ahead of
			// the emitting rank's clock (the recorder re-orders by time).
			rec.Emit(start, rank, obs.LayerVeloC, obs.EvVeloCFlushStart,
				obs.KV("name", name), obs.KV("version", version),
				obs.KV("bytes", simSize), obs.KV("wait_seconds", start-now))
			rec.Emit(end, rank, obs.LayerVeloC, obs.EvVeloCFlushEnd,
				obs.KV("name", name), obs.KV("version", version),
				obs.KV("bytes", simSize), obs.KV("seconds", end-now),
				obs.KV("queue_depth", depthAtEnd))
			reg.Histogram(obs.MFlushSeconds, obs.TimeBuckets).Observe(end - now)
			reg.Histogram(obs.MFlushQueueWaitSeconds, obs.TimeBuckets).Observe(start - now)
			reg.Gauge(obs.MFlushQueueDepth).Set(float64(depthAtEnd))
		}
		req.OnCancel = func(at float64, reason string, depth int) {
			// The queued flush was lost with its node (daemon crash or
			// scratch loss) before it ever started — typically because the
			// owner rank was killed or shrunk away mid-queue. It contributes
			// no queue-wait observation (it never started); the discard event
			// and counter keep queued = started + coalesced + discarded
			// reconcilable, and the depth gauge reflects the drained queue.
			rec.Emit(at, rank, obs.LayerVeloC, obs.EvVeloCFlushDiscarded,
				obs.KV("name", name), obs.KV("version", version),
				obs.KV("bytes", simSize), obs.KV("reason", reason),
				obs.KV("queue_depth", depth))
			reg.Counter(obs.MFlushDiscarded).Inc()
			reg.Gauge(obs.MFlushQueueDepth).Set(float64(depth))
		}
		req.OnReorder = func(at, committedStart float64, committedVersion int) {
			// Deep virtual-time skew between co-resident ranks: a
			// virtually-later observer committed the older version at
			// committedStart before this virtually-earlier superseding
			// submission arrived, so the superseded bytes reached the PFS
			// instead of being coalesced. The commit stands (PFS writes are
			// final, and the newer version flushes right behind it); the
			// event makes the missed coalesce auditable under storm replays.
			rec.Emit(at, rank, obs.LayerCluster, obs.EvFlushReorder,
				obs.KV("name", name), obs.KV("version", version),
				obs.KV("committed_version", committedVersion),
				obs.KV("committed_start", committedStart))
			reg.Counter(obs.MFlushReorders).Inc()
		}
	}
	_, _, coalesced, err := node.FlushSubmit(req, now)
	if err != nil {
		return err
	}
	if coalesced > 0 {
		rec.Registry().Counter(obs.MFlushCoalesced).Add(float64(coalesced))
	}
	return nil
}

// syncFlushes advances every node's flush scheduler to the caller's
// current time, so queued flushes whose start times have been reached are
// visible to the PFS reads that follow. A no-op when scheduling is off.
func (c *Client) syncFlushes() {
	c.p.World().Cluster().AdvanceFlushes(c.p.Now())
}
