package veloc

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/trace"
)

// runObsRanks is runRanks with an event recorder attached to the world and
// the given flush policy installed on every node.
func runObsRanks(t *testing.T, n int, policy cluster.FlushPolicy, f func(p *mpi.Proc) error) *obs.Recorder {
	t.Helper()
	cl := cluster.New(n, quietMachine())
	cl.SetFlushPolicy(policy)
	rec := obs.New()
	w := mpi.NewWorld(cl, n, 1, false, 1, 0)
	w.SetObs(rec)
	res := make([]error, n)
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(p *mpi.Proc) {
			defer func() { done <- p.Rank() }()
			defer func() { recover() }()
			res[p.Rank()] = f(p)
		}(w.Proc(i))
	}
	for i := 0; i < n; i++ {
		<-done
	}
	for i, e := range res {
		if e != nil {
			t.Fatalf("rank %d: %v", i, e)
		}
	}
	return rec
}

func countEvents(rec *obs.Recorder, name string) int {
	n := 0
	for _, e := range rec.Events() {
		if e.Name == name {
			n++
		}
	}
	return n
}

// TestScheduledCheckpointEmitsSchedulerEvents pins the scheduler's event
// and metric contract: every checkpoint emits flush_queued and (once
// committed) flush_start/flush_end; superseded queued versions are counted
// by veloc_flush_coalesced_total and emit neither start nor end.
func TestScheduledCheckpointEmitsSchedulerEvents(t *testing.T) {
	rec := runObsRanks(t, 1, cluster.FlushPolicy{Window: 1, Coalesce: true}, func(p *mpi.Proc) error {
		c, err := New(p, Config{Mode: Single})
		if err != nil {
			return err
		}
		buf := make([]byte, 64)
		c.Protect(0, SliceRegion{&buf})
		// v0 starts at once; v1 and v2 arrive while v0 is in flight, so v1
		// queues and v2's submission cancels it.
		for v := 0; v <= 2; v++ {
			if err := c.Checkpoint("ck", v); err != nil {
				return err
			}
		}
		// Drain: v2 commits once the clock passes v0's window.
		p.ChargeTime(trace.AppCompute, 1e6)
		c.syncFlushes()
		return nil
	})

	if got := countEvents(rec, obs.EvVeloCFlushQueued); got != 3 {
		t.Errorf("flush_queued events = %d, want 3 (one per checkpoint)", got)
	}
	if got := countEvents(rec, obs.EvVeloCFlushBegin); got != 3 {
		t.Errorf("flush_begin events = %d, want 3 (emitted in both modes)", got)
	}
	if got := countEvents(rec, obs.EvVeloCFlushStart); got != 2 {
		t.Errorf("flush_start events = %d, want 2 (v1 was coalesced)", got)
	}
	if got := countEvents(rec, obs.EvVeloCFlushEnd); got != 2 {
		t.Errorf("flush_end events = %d, want 2 (v1 was coalesced)", got)
	}
	reg := rec.Registry()
	if got := reg.CounterValue(obs.MFlushCoalesced); got != 1 {
		t.Errorf("%s = %v, want 1", obs.MFlushCoalesced, got)
	}
	if got := reg.CounterValue(obs.MFlushes); got != 3 {
		t.Errorf("%s = %v, want 3 (counted at submission)", obs.MFlushes, got)
	}

	// The committed v2 waited in the queue behind v0's window: its
	// flush_start must carry a positive wait, mirrored by the queue-wait
	// histogram.
	var v2wait float64 = -1
	for _, e := range rec.Events() {
		if e.Name != obs.EvVeloCFlushStart {
			continue
		}
		var version int
		var wait float64
		for _, a := range e.Attrs {
			switch a.Key {
			case "version":
				version, _ = a.Value.(int)
			case "wait_seconds":
				wait, _ = a.Value.(float64)
			}
		}
		if version == 2 {
			v2wait = wait
		}
	}
	if v2wait <= 0 {
		t.Errorf("v2 flush_start wait_seconds = %v, want > 0 (queued behind v0)", v2wait)
	}
}

// TestRestartStallOnPendingFlushCountsAsFlushWait pins the restore half of
// veloc_flush_wait_seconds: a PFS restore that has to wait out a
// still-draining flush adds the stall to the counter.
func TestRestartStallOnPendingFlushCountsAsFlushWait(t *testing.T) {
	rec := runObsRanks(t, 1, cluster.FlushPolicy{Window: 1, Coalesce: true}, func(p *mpi.Proc) error {
		c, err := New(p, Config{Mode: Single})
		if err != nil {
			return err
		}
		buf := make([]byte, 64)
		c.Protect(0, SliceRegion{&buf})
		if err := c.Checkpoint("ck", 0); err != nil {
			return err
		}
		// Commit v0's flush before dropping the scratch copy: commitment is
		// strictly lazy, so the PFS write needs an observation strictly
		// after the submission instant (and well inside the open window).
		p.ChargeTime(trace.AppCompute, 1e-12)
		p.Node().AdvanceFlushes(p.Now())
		// Drop the scratch copy so restore must read the PFS while v0's
		// flush window is still open.
		p.Node().ScratchDelete(dataKey("ck", 0, c.rank))
		restored := make([]byte, len(buf))
		r, err := New(p, Config{Mode: Single})
		if err != nil {
			return err
		}
		r.Protect(0, SliceRegion{&restored})
		if _, err := r.RestartLatest("ck"); err != nil {
			return err
		}
		return nil
	})
	if got := rec.Registry().CounterValue(obs.MFlushWaitSeconds); got <= 0 {
		t.Errorf("%s = %v, want > 0 (restore stalled on the open flush window)", obs.MFlushWaitSeconds, got)
	}
}

// TestZeroPolicyKeepsUnscheduledBehaviour pins that the zero FlushPolicy
// changes nothing: no scheduler events, no queue, flush_end carries the
// completion-time queue depth (the PR 4 sampling bugfix applies in both
// modes).
func TestZeroPolicyKeepsUnscheduledBehaviour(t *testing.T) {
	rec := runObsRanks(t, 1, cluster.FlushPolicy{}, func(p *mpi.Proc) error {
		c, err := New(p, Config{Mode: Single})
		if err != nil {
			return err
		}
		buf := make([]byte, 64)
		c.Protect(0, SliceRegion{&buf})
		if err := c.Checkpoint("ck", 0); err != nil {
			return err
		}
		p.ChargeTime(trace.AppCompute, 1e6)
		return nil
	})
	if got := countEvents(rec, obs.EvVeloCFlushQueued); got != 0 {
		t.Errorf("flush_queued events = %d with scheduling off, want 0", got)
	}
	if got := countEvents(rec, obs.EvVeloCFlushStart); got != 0 {
		t.Errorf("flush_start events = %d with scheduling off, want 0", got)
	}
	var sawDepth bool
	for _, e := range rec.Events() {
		if e.Name != obs.EvVeloCFlushEnd {
			continue
		}
		for _, a := range e.Attrs {
			if a.Key == "queue_depth" {
				sawDepth = true
			}
		}
	}
	if !sawDepth {
		t.Error("unscheduled flush_end missing the queue_depth attribute")
	}
}
