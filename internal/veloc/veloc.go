// Package veloc is a simulation of the VeloC asynchronous multi-level
// checkpoint/restart runtime. As in VeloC, applications (or the Kokkos
// Resilience layer acting on their behalf) register protected memory
// regions; Checkpoint synchronously copies them into node-local scratch
// (a memory-mapped folder in the paper's configuration) and then flushes
// them to the parallel file system asynchronously via the per-node server.
// The server is modeled analytically by cluster.Node.FlushAsync: the flush
// occupies a virtual-time window that throttles the shared PFS and congests
// the node's MPI traffic, which is exactly the behaviour the paper's
// Figures 5 and 6 attribute to VeloC.
//
// Two modes mirror Section V of the paper:
//
//   - Collective: the classic VeloC configuration. Restart version
//     selection is a collective over the communicator, automatically
//     finding the best globally-available checkpoint. This mode cannot
//     tolerate the communicator being replaced after a process failure.
//   - Single (non-collective): each rank manages versions locally; the
//     caller performs the globally-best-version reduction manually. This is
//     the mode Fenix integration requires.
package veloc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Mode selects collective or non-collective (single) operation.
type Mode int

const (
	// Collective coordinates version selection across the communicator.
	Collective Mode = iota
	// Single operates per-rank with no internal communication.
	Single
)

func (m Mode) String() string {
	if m == Collective {
		return "collective"
	}
	return "single"
}

// ErrNoCheckpoint is returned when no usable checkpoint version exists.
var ErrNoCheckpoint = errors.New("veloc: no checkpoint available")

// Region is a protected memory region: it can produce its current contents
// and restore itself from checkpointed bytes.
// SimBytes is the region's size in the simulation's cost model — equal to
// len(Bytes()) unless a small real buffer stands in for paper-scale data
// (see kokkos.View.SimBytes).
type Region interface {
	Bytes() []byte
	Restore([]byte) error
	SimBytes() int
}

// SliceRegion adapts a byte slice pointer as a Region.
type SliceRegion struct{ Buf *[]byte }

// Bytes returns a copy of the current slice contents.
func (r SliceRegion) Bytes() []byte {
	cp := make([]byte, len(*r.Buf))
	copy(cp, *r.Buf)
	return cp
}

// Restore overwrites the slice contents.
func (r SliceRegion) Restore(b []byte) error {
	if len(b) != len(*r.Buf) {
		return fmt.Errorf("veloc: region expects %d bytes, got %d", len(*r.Buf), len(b))
	}
	copy(*r.Buf, b)
	return nil
}

// SimBytes returns the real slice length.
func (r SliceRegion) SimBytes() int { return len(*r.Buf) }

// Config configures a Client.
type Config struct {
	// Mode selects collective or single operation.
	Mode Mode
	// Comm is the communicator used for collective version selection;
	// required in Collective mode, ignored in Single mode.
	Comm *mpi.Comm
	// Rank is the logical rank identity used in checkpoint file names. It
	// defaults to the comm rank (Collective) or world rank (Single). After
	// a Fenix repair, a replacement process adopts its predecessor's
	// logical rank so it finds the predecessor's checkpoints.
	Rank int
	// RankSet reports whether Rank was explicitly provided (a zero Rank is
	// valid).
	RankSet bool
	// Verify enables read-back integrity verification of every checkpoint
	// before its version is committed: after the scratch write the blob is
	// read back and checked against its CRC; on mismatch the checkpoint is
	// re-serialized and re-written once, and if corruption persists the
	// version is discarded (ErrRejected) so it can never overwrite the
	// last good version. This is the data layer's half of the SDC
	// detection ladder (checksum / replay / vote).
	Verify bool
}

// Client is one process's VeloC handle.
type Client struct {
	p       *mpi.Proc
	mode    Mode
	comm    *mpi.Comm
	rank    int
	regions map[int]Region
	ids     []int
	verify  bool
	// lastCkptAt is the virtual time of the previous Checkpoint call
	// (negative before the first one); the flush scheduler derives its
	// deadline from the observed checkpoint cadence.
	lastCkptAt float64
}

// initCost is the virtual cost of VeloC client initialization (connecting
// to the active backend server on the node), in seconds.
const initCost = 5e-3

// New creates a VeloC client for process p. It charges the resilience
// initialization cost to p's clock.
func New(p *mpi.Proc, cfg Config) (*Client, error) {
	c := &Client{p: p, mode: cfg.Mode, comm: cfg.Comm, regions: make(map[int]Region), lastCkptAt: -1, verify: cfg.Verify}
	switch cfg.Mode {
	case Collective:
		if cfg.Comm == nil {
			return nil, errors.New("veloc: collective mode requires a communicator")
		}
		c.rank = cfg.Comm.Rank(p)
	case Single:
		c.rank = p.Rank()
	default:
		return nil, fmt.Errorf("veloc: unknown mode %d", int(cfg.Mode))
	}
	if cfg.RankSet {
		c.rank = cfg.Rank
	}
	if c.rank < 0 {
		return nil, errors.New("veloc: calling process not in communicator")
	}
	p.ChargeTime(trace.ResilienceInit, initCost)
	p.Event(obs.LayerVeloC, obs.EvVeloCInit,
		obs.KV("mode", c.mode.String()), obs.KV("logical_rank", c.rank))
	return c, nil
}

// Mode returns the client's operating mode.
func (c *Client) Mode() Mode { return c.mode }

// Rank returns the logical rank used in checkpoint naming.
func (c *Client) Rank() int { return c.rank }

// SetRank updates the logical rank, used when continuing with a shrunk
// communicator after running out of spares.
func (c *Client) SetRank(r int) { c.rank = r }

// SetComm replaces the communicator used for collective operations after a
// Fenix repair.
func (c *Client) SetComm(comm *mpi.Comm) { c.comm = comm }

// Protect registers region r under the given id (VELOC_Mem_protect).
// Re-registering an id replaces the region.
func (c *Client) Protect(id int, r Region) {
	if _, ok := c.regions[id]; !ok {
		c.ids = append(c.ids, id)
		sort.Ints(c.ids)
	}
	c.regions[id] = r
}

// Unprotect removes the region registered under id.
func (c *Client) Unprotect(id int) {
	if _, ok := c.regions[id]; !ok {
		return
	}
	delete(c.regions, id)
	for i, v := range c.ids {
		if v == id {
			c.ids = append(c.ids[:i], c.ids[i+1:]...)
			break
		}
	}
}

// Protected returns the number of registered regions.
func (c *Client) Protected() int { return len(c.regions) }

func dataKey(name string, version, rank int) string {
	return fmt.Sprintf("veloc/%s/v%d/rank%d", name, version, rank)
}

func metaKey(name string, rank int) string {
	return fmt.Sprintf("veloc/%s/meta/rank%d", name, rank)
}

func encodeVersion(v int) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(v))
	return b
}

func decodeVersion(b []byte) (int, bool) {
	if len(b) != 8 {
		return 0, false
	}
	return int(binary.LittleEndian.Uint64(b)), true
}

// ErrCorrupt indicates a checkpoint whose integrity checksum does not
// match its contents.
var ErrCorrupt = errors.New("veloc: checkpoint integrity check failed")

// ErrRejected indicates a checkpoint version that was discarded before
// commit because its blob kept failing read-back verification. The last
// good version is untouched; callers should carry on without advancing
// their latest-version cursor.
var ErrRejected = errors.New("veloc: checkpoint rejected by integrity verification")

// blobIntact reports whether a serialized checkpoint blob passes its CRC
// header; used to skip silently-corrupted copies during version
// selection so restart falls back to the previous good version.
func blobIntact(b []byte) bool {
	return len(b) >= 8 && crc32.ChecksumIEEE(b[4:]) == binary.LittleEndian.Uint32(b)
}

// blob layout: u32 crc32 (IEEE, over the rest), u32 count, then per
// region: u32 id, u32 len, bytes. The CRC mirrors VeloC's checkpoint
// integrity verification. The second return is the cost-model size of the
// checkpoint.
func (c *Client) serialize() ([]byte, int) {
	size := 8
	simSize := 8
	contents := make(map[int][]byte, len(c.ids))
	for _, id := range c.ids {
		b := c.regions[id].Bytes()
		contents[id] = b
		size += 8 + len(b)
		simSize += 8 + c.regions[id].SimBytes()
	}
	out := make([]byte, 4, size)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(c.ids)))
	out = append(out, hdr[:]...)
	for _, id := range c.ids {
		binary.LittleEndian.PutUint32(hdr[:], uint32(id))
		out = append(out, hdr[:]...)
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(contents[id])))
		out = append(out, hdr[:]...)
		out = append(out, contents[id]...)
	}
	binary.LittleEndian.PutUint32(out[:4], crc32.ChecksumIEEE(out[4:]))
	return out, simSize
}

func (c *Client) deserialize(blob []byte) error {
	if len(blob) < 8 {
		return errors.New("veloc: truncated checkpoint blob")
	}
	if crc32.ChecksumIEEE(blob[4:]) != binary.LittleEndian.Uint32(blob) {
		return ErrCorrupt
	}
	count := int(binary.LittleEndian.Uint32(blob[4:]))
	off := 8
	for i := 0; i < count; i++ {
		if off+8 > len(blob) {
			return errors.New("veloc: truncated checkpoint region header")
		}
		id := int(binary.LittleEndian.Uint32(blob[off:]))
		n := int(binary.LittleEndian.Uint32(blob[off+4:]))
		off += 8
		if off+n > len(blob) {
			return errors.New("veloc: truncated checkpoint region data")
		}
		r, ok := c.regions[id]
		if !ok {
			return fmt.Errorf("veloc: checkpoint contains unregistered region %d", id)
		}
		if err := r.Restore(blob[off : off+n]); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// flipBlob asks the chaos injector whether a bit flip is scheduled for
// this visit of veloc.scratch_blob and, if so, applies it to the
// serialized blob in place (frac selects the byte proportionally, bit the
// bit within it) and emits the injection event. Returns whether a flip
// was applied.
func (c *Client) flipBlob(name string, version int, blob []byte) bool {
	frac, bit, ok := c.p.FlipAt("veloc.scratch_blob")
	if !ok || len(blob) == 0 {
		return false
	}
	idx := int(frac * float64(len(blob)))
	if idx >= len(blob) {
		idx = len(blob) - 1
	}
	blob[idx] ^= 1 << (uint(bit) % 8)
	c.p.Event(obs.LayerChaos, obs.EvSDCInjected,
		obs.KV("point", "veloc.scratch_blob"), obs.KV("name", name),
		obs.KV("version", version), obs.KV("byte", idx), obs.KV("bit", bit%8))
	c.p.Obs().Registry().Counter(obs.MSDCInjected).Inc()
	return true
}

// sdcEvent emits an SDC lifecycle event for a checkpoint blob under the
// chaos taxonomy (the VeloC blob verifier is the resolving layer here).
func (c *Client) sdcEvent(ev, name string, version int) {
	c.p.Event(obs.LayerChaos, ev,
		obs.KV("point", "veloc.scratch_blob"), obs.KV("name", name),
		obs.KV("version", version))
}

// Checkpoint writes version `version` of checkpoint `name`
// (VELOC_Checkpoint). The synchronous part — serializing the protected
// regions into node-local scratch — is charged to the CheckpointFunc
// category; the flush to the PFS proceeds asynchronously on the node's
// server and only manifests as later congestion and file availability.
func (c *Client) Checkpoint(name string, version int) error {
	if len(c.regions) == 0 {
		return errors.New("veloc: checkpoint with no protected regions")
	}
	c.p.Inject("veloc.checkpoint")
	node := c.p.Node()
	key := dataKey(name, version, c.rank)

	// Serialize and persist to scratch, giving the chaos corruptor its
	// shot at the stored bytes (point veloc.scratch_blob). With Verify on,
	// the blob is read back and CRC-checked before the version commits:
	// corruption is detected here, repaired by one clean re-write, and a
	// persistently corrupt version is discarded outright — the previous
	// good version is never overwritten by a rejected blob.
	var cost float64
	var simSize int
	detected := 0
	for attempt := 0; ; attempt++ {
		blob, ss := c.serialize()
		simSize = ss
		flipped := c.flipBlob(name, version, blob)
		cost += node.ScratchWriteSized(key, blob, simSize)
		if !c.verify {
			if flipped {
				// No verification layer will ever look at this blob on the
				// write path: the corruption escapes into storage. (Version
				// selection still CRC-skips it if a restart comes looking.)
				c.sdcEvent(obs.EvSDCEscaped, name, version)
				c.p.Obs().Registry().Counter(obs.MSDCEscaped).Inc()
			}
			break
		}
		back, rcost, ok := node.ScratchRead(key)
		cost += rcost
		if ok && blobIntact(back) {
			if detected > 0 {
				c.sdcEvent(obs.EvSDCCorrected, name, version)
				c.p.Obs().Registry().Counter(obs.MSDCCorrected).Add(float64(detected))
			}
			break
		}
		detected++
		c.sdcEvent(obs.EvSDCDetected, name, version)
		c.p.Obs().Registry().Counter(obs.MSDCDetected).Inc()
		if attempt >= 1 {
			node.ScratchDelete(key)
			c.p.ChargeTime(trace.CheckpointFunc, cost)
			return fmt.Errorf("%w: %s version %d (rank %d)", ErrRejected, name, version, c.rank)
		}
	}
	node.ScratchWrite(metaKey(name, c.rank), encodeVersion(version))
	c.p.ChargeTime(trace.CheckpointFunc, cost)
	c.p.Event(obs.LayerVeloC, obs.EvVeloCCheckpoint,
		obs.KV("name", name), obs.KV("version", version),
		obs.KV("bytes", simSize), obs.KV("scratch_seconds", cost))

	now := c.p.Now()
	c.p.Event(obs.LayerVeloC, obs.EvVeloCFlushBegin,
		obs.KV("name", name), obs.KV("version", version), obs.KV("bytes", simSize))
	if rec := c.p.Obs(); rec.Enabled() {
		reg := rec.Registry()
		layer := obs.L("layer", "veloc")
		reg.Counter(obs.MCheckpoints, layer).Inc()
		reg.Counter(obs.MCheckpointBytes, layer).Add(float64(simSize))
		reg.Histogram(obs.MCheckpointSyncSeconds, obs.TimeBuckets, layer).Observe(cost)
		reg.Counter(obs.MFlushes).Inc()
	}
	// The flush is owner-tagged with this process's world rank: if the
	// process's node crashes before the flush window closes
	// (mpi.Proc.CrashNode), the PFS copy never becomes readable and restart
	// falls back to an older complete version.
	if node.FlushPolicy().Enabled() {
		if err := c.scheduleFlush(name, version, simSize, now); err != nil {
			return err
		}
	} else {
		end, err := node.FlushAsyncFor(dataKey(name, version, c.rank), dataKey(name, version, c.rank), now, c.p.Rank())
		if err != nil {
			return err
		}
		if rec := c.p.Obs(); rec.Enabled() {
			// The flush completes asynchronously on the node's server; the end
			// event is stamped with its virtual completion time, ahead of the
			// emitting rank's clock. queue_depth is sampled at completion so
			// the analyzer sees the queue drain, not just its growth.
			rec.Emit(end, c.p.Rank(), obs.LayerVeloC, obs.EvVeloCFlushEnd,
				obs.KV("name", name), obs.KV("version", version),
				obs.KV("bytes", simSize), obs.KV("seconds", end-now),
				obs.KV("queue_depth", node.InFlightAt(end)))
			reg := rec.Registry()
			reg.Histogram(obs.MFlushSeconds, obs.TimeBuckets).Observe(end - now)
			reg.Gauge(obs.MFlushQueueDepth).Set(float64(node.InFlightAt(now)))
		}
	}
	c.lastCkptAt = now
	// Publish the PFS meta entry; its availability follows the data flush.
	c.p.World().Cluster().PFS().Write(metaKey(name, c.rank), encodeVersion(version), c.p.Now())
	// The flush window is still open here: a kill at this point models a
	// failure mid-flush. Combined with a node crash (mpi.Proc.CrashNode),
	// the meta entry is left advertising a version whose PFS data never
	// completes, which restore must skip.
	c.p.Inject("veloc.flush")
	return nil
}

// localLatest returns the newest restorable version visible to this rank
// without communication: the scratch copy if present, else the PFS meta
// entry. The meta entry is advertised before the asynchronous data flush
// completes, so a version whose flush was interrupted by the writer's
// failure may be advertised yet unreadable; localLatest scans downward to
// the newest *complete* version (older versions persist — the core stack
// never garbage-collects them).
func (c *Client) localLatest(name string) (int, bool) {
	c.syncFlushes()
	v, ok := -1, false
	if b, _, sok := c.p.Node().ScratchRead(metaKey(name, c.rank)); sok {
		if dv, dok := decodeVersion(b); dok {
			v, ok = dv, true
		}
	}
	if !ok {
		if b, _, pok := c.p.World().Cluster().PFS().Read(metaKey(name, c.rank), c.p.Now()); pok {
			if dv, dok := decodeVersion(b); dok {
				v, ok = dv, true
			}
		}
	}
	if !ok {
		return 0, false
	}
	for v >= 0 && !c.Available(name, v) {
		v--
	}
	if v < 0 {
		return 0, false
	}
	return v, true
}

// LatestVersion returns the newest restorable version of `name`. In
// Collective mode this is the best checkpoint available at every rank of
// the communicator (an all-reduce minimum, as VeloC's collective restart
// performs internally); in Single mode it is the local view only, and the
// caller is responsible for the global reduction (see BestCommonVersion).
func (c *Client) LatestVersion(name string) (int, error) {
	local, ok := c.localLatest(name)
	if c.mode == Single {
		if !ok {
			return 0, ErrNoCheckpoint
		}
		return local, nil
	}
	v := -1
	if ok {
		v = local
	}
	// Recovery-infrastructure collective: it runs on recovery paths the
	// application's failure-free execution never takes, so it must stay out
	// of the message log's lineage cursor space.
	c.p.LogExemptBegin()
	global, err := c.comm.AllreduceInt(c.p, v, mpi.OpMin)
	c.p.LogExemptEnd()
	if err != nil {
		return 0, err
	}
	if global < 0 {
		return 0, ErrNoCheckpoint
	}
	return global, nil
}

// BestCommonVersion performs the manual globally-best-version reduction
// over comm for a Single-mode client — the extra step the paper's Fenix
// integration adds to the application (Section V).
func (c *Client) BestCommonVersion(name string, comm *mpi.Comm) (int, error) {
	v := -1
	if local, ok := c.localLatest(name); ok {
		v = local
	}
	// Exempt from message logging: this reduction runs once per (re-)entry
	// including generation 0, but never during a localized replacement's
	// forward re-execution, so logging it would skew the lineage cursors.
	c.p.LogExemptBegin()
	global, err := comm.AllreduceInt(c.p, v, mpi.OpMin)
	c.p.LogExemptEnd()
	if err != nil {
		return 0, err
	}
	if global < 0 {
		return 0, ErrNoCheckpoint
	}
	return global, nil
}

// Restart restores the protected regions from version `version` of `name`
// (VELOC_Restart). Ranks with a scratch copy restore node-locally; others
// (typically a replacement process on a spare node) read from the PFS,
// waiting out any still-running flush. Time is charged to DataRecovery.
func (c *Client) Restart(name string, version int) error {
	c.syncFlushes()
	key := dataKey(name, version, c.rank)
	// noteRestart records the restore with the cost-model size stored
	// alongside the checkpoint, matching the units of
	// checkpoint_bytes_total (the region's own SimBytes is unreliable on a
	// recovered process that has never checkpointed).
	noteRestart := func(source string, seconds float64, simBytes int) {
		c.p.Event(obs.LayerVeloC, obs.EvVeloCRestart,
			obs.KV("name", name), obs.KV("version", version),
			obs.KV("source", source), obs.KV("seconds", seconds), obs.KV("bytes", simBytes))
		if reg := c.p.Obs().Registry(); reg != nil {
			layer := obs.L("layer", "veloc")
			reg.Counter(obs.MRestores, layer).Inc()
			reg.Counter(obs.MRestoreBytes, layer).Add(float64(simBytes))
			reg.Histogram(obs.MRestoreSeconds, obs.TimeBuckets, layer).Observe(seconds)
		}
	}
	if blob, cost, ok := c.p.Node().ScratchRead(key); ok {
		c.p.ChargeTime(trace.DataRecovery, cost)
		err := c.deserialize(blob)
		if err == nil {
			sim, _ := c.p.Node().ScratchSimBytesOf(key)
			noteRestart("scratch", cost, sim)
			return nil
		}
		if !errors.Is(err, ErrCorrupt) {
			return err
		}
		// The scratch copy is silently corrupted: fall through to the PFS
		// copy of the same version, which the flush captured independently.
	}
	pfs := c.p.World().Cluster().PFS()
	blob, ready, ok := pfs.Read(key, c.p.Now())
	if !ok {
		return fmt.Errorf("%w: %s version %d (rank %d)", ErrNoCheckpoint, name, version, c.rank)
	}
	if now := c.p.Now(); ready > now {
		// The checkpoint's flush is still draining: the stall until it
		// becomes readable is MPI-visible flush wait, same budget as the
		// congestion inflation charged on communication.
		if reg := c.p.Obs().Registry(); reg != nil {
			reg.Counter(obs.MFlushWaitSeconds).Add(ready - now)
		}
	}
	waited := c.p.Clock().AdvanceTo(ready)
	c.p.Recorder().Add(trace.DataRecovery, waited)
	if err := c.deserialize(blob); err != nil {
		return err
	}
	sim, _ := pfs.SimBytesOf(key)
	noteRestart("pfs", waited, sim)
	return nil
}

// RestartLatest restores the newest available version and returns it.
func (c *Client) RestartLatest(name string) (int, error) {
	v, err := c.LatestVersion(name)
	if err != nil {
		return 0, err
	}
	return v, c.Restart(name, v)
}

// Drop removes version `version` of `name` from both scratch and the PFS
// for this rank (VELOC_Checkpoint_delete). Rolling the meta entries back
// when the latest version is dropped is NOT attempted: VeloC's own GC
// only ever removes superseded versions, which is the supported use here.
func (c *Client) Drop(name string, version int) {
	key := dataKey(name, version, c.rank)
	c.p.Node().ScratchDelete(key)
	c.p.World().Cluster().PFS().Delete(key)
}

// GCBefore drops every version older than `keepFrom`, bounding storage the
// way VeloC's watchdog prunes superseded checkpoints. It scans versions
// downward from keepFrom-1 until a missing one, so it assumes the
// application checkpoints at monotonically increasing versions.
func (c *Client) GCBefore(name string, keepFrom int) {
	pfs := c.p.World().Cluster().PFS()
	for v := keepFrom - 1; v >= 0; v-- {
		key := dataKey(name, v, c.rank)
		_, inPFS := pfs.Exists(key)
		_, _, inScratch := c.p.Node().ScratchRead(key)
		if !inPFS && !inScratch {
			if v < keepFrom-1 {
				break // past the contiguous run of existing versions
			}
			continue
		}
		c.Drop(name, v)
	}
}

// Available reports whether version `version` of `name` is restorable by
// this rank from scratch or the PFS. A scratch copy failing its CRC is
// treated as absent, so version selection silently falls back past
// corrupted copies to the previous good version.
func (c *Client) Available(name string, version int) bool {
	c.syncFlushes()
	key := dataKey(name, version, c.rank)
	if blob, _, ok := c.p.Node().ScratchRead(key); ok && blobIntact(blob) {
		return true
	}
	_, ok := c.p.World().Cluster().PFS().Exists(key)
	return ok
}
