package veloc

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/trace"
)

func quietMachine() *sim.Machine {
	m := sim.DefaultMachine()
	m.NoiseAmplitude = 0
	return m
}

// runRanks executes f on an n-rank ULFM world and fails the test on error.
func runRanks(t *testing.T, n int, f func(p *mpi.Proc) error) *mpi.World {
	t.Helper()
	cl := cluster.New(n, quietMachine())
	w := mpi.NewWorld(cl, n, 1, false, 1, 0)
	res := make([]error, n)
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(p *mpi.Proc) {
			defer func() { done <- p.Rank() }()
			defer func() { recover() }() // allow Exit unwinds in failure tests
			res[p.Rank()] = f(p)
		}(w.Proc(i))
	}
	for i := 0; i < n; i++ {
		<-done
	}
	for i, e := range res {
		if e != nil {
			t.Fatalf("rank %d: %v", i, e)
		}
	}
	return w
}

func TestProtectAndCount(t *testing.T) {
	runRanks(t, 1, func(p *mpi.Proc) error {
		c, err := New(p, Config{Mode: Single})
		if err != nil {
			return err
		}
		buf := make([]byte, 8)
		c.Protect(0, SliceRegion{&buf})
		c.Protect(0, SliceRegion{&buf}) // replace, not duplicate
		c.Protect(3, SliceRegion{&buf})
		if c.Protected() != 2 {
			t.Errorf("Protected() = %d", c.Protected())
		}
		c.Unprotect(0)
		c.Unprotect(99) // no-op
		if c.Protected() != 1 {
			t.Errorf("after unprotect Protected() = %d", c.Protected())
		}
		return nil
	})
}

func TestCheckpointRestartRoundTrip(t *testing.T) {
	runRanks(t, 1, func(p *mpi.Proc) error {
		c, err := New(p, Config{Mode: Single})
		if err != nil {
			return err
		}
		a := []byte("region A contents")
		b := []byte{9, 8, 7}
		c.Protect(1, SliceRegion{&a})
		c.Protect(2, SliceRegion{&b})
		if err := c.Checkpoint("heat", 5); err != nil {
			return err
		}
		// Clobber and restore.
		copy(a, bytes.Repeat([]byte{0}, len(a)))
		copy(b, []byte{0, 0, 0})
		if err := c.Restart("heat", 5); err != nil {
			return err
		}
		if string(a) != "region A contents" || b[0] != 9 {
			t.Errorf("restore mismatch: %q %v", a, b)
		}
		return nil
	})
}

func TestCheckpointChargesCheckpointFunc(t *testing.T) {
	w := runRanks(t, 1, func(p *mpi.Proc) error {
		c, _ := New(p, Config{Mode: Single})
		buf := make([]byte, 1<<20)
		c.Protect(0, SliceRegion{&buf})
		return c.Checkpoint("x", 1)
	})
	rec := w.Proc(0).Recorder()
	if rec.Get(trace.CheckpointFunc) <= 0 {
		t.Fatal("no CheckpointFunc time recorded")
	}
	if rec.Get(trace.ResilienceInit) <= 0 {
		t.Fatal("no ResilienceInit time recorded")
	}
}

func TestCheckpointCreatesCongestion(t *testing.T) {
	w := runRanks(t, 1, func(p *mpi.Proc) error {
		c, _ := New(p, Config{Mode: Single})
		buf := make([]byte, 1<<26) // 64 MB
		c.Protect(0, SliceRegion{&buf})
		return c.Checkpoint("x", 1)
	})
	p := w.Proc(0)
	if !p.Node().CongestedAt(p.Now()) {
		t.Fatal("node not congested right after async checkpoint")
	}
}

func TestCheckpointNoRegionsFails(t *testing.T) {
	runRanks(t, 1, func(p *mpi.Proc) error {
		c, _ := New(p, Config{Mode: Single})
		if err := c.Checkpoint("x", 1); err == nil {
			t.Error("checkpoint with no regions succeeded")
		}
		return nil
	})
}

func TestLatestVersionSingleMode(t *testing.T) {
	runRanks(t, 1, func(p *mpi.Proc) error {
		c, _ := New(p, Config{Mode: Single})
		buf := []byte{1}
		c.Protect(0, SliceRegion{&buf})
		if _, err := c.LatestVersion("x"); !errors.Is(err, ErrNoCheckpoint) {
			t.Errorf("expected ErrNoCheckpoint, got %v", err)
		}
		for v := 1; v <= 3; v++ {
			if err := c.Checkpoint("x", v); err != nil {
				return err
			}
		}
		v, err := c.LatestVersion("x")
		if err != nil {
			return err
		}
		if v != 3 {
			t.Errorf("LatestVersion = %d", v)
		}
		return nil
	})
}

func TestLatestVersionCollectiveTakesGlobalMin(t *testing.T) {
	runRanks(t, 3, func(p *mpi.Proc) error {
		comm := p.World().CommWorld()
		c, err := New(p, Config{Mode: Collective, Comm: comm})
		if err != nil {
			return err
		}
		buf := []byte{byte(p.Rank())}
		c.Protect(0, SliceRegion{&buf})
		// Rank 2 only reaches version 2; others reach 4.
		max := 4
		if p.Rank() == 2 {
			max = 2
		}
		for v := 1; v <= max; v++ {
			if err := c.Checkpoint("x", v); err != nil {
				return err
			}
		}
		v, err := c.LatestVersion("x")
		if err != nil {
			return err
		}
		if v != 2 {
			t.Errorf("rank %d: global latest = %d, want 2", p.Rank(), v)
		}
		return nil
	})
}

func TestBestCommonVersionSingleMode(t *testing.T) {
	// The manual reduction the Fenix integration performs.
	runRanks(t, 3, func(p *mpi.Proc) error {
		comm := p.World().CommWorld()
		c, err := New(p, Config{Mode: Single})
		if err != nil {
			return err
		}
		buf := []byte{0}
		c.Protect(0, SliceRegion{&buf})
		max := 5
		if p.Rank() == 1 {
			max = 3
		}
		for v := 1; v <= max; v++ {
			if err := c.Checkpoint("x", v); err != nil {
				return err
			}
		}
		v, err := c.BestCommonVersion("x", comm)
		if err != nil {
			return err
		}
		if v != 3 {
			t.Errorf("rank %d best common = %d, want 3", p.Rank(), v)
		}
		return nil
	})
}

func TestRestartFromPFSWhenScratchMissing(t *testing.T) {
	// Simulates a replacement process on another node restoring its
	// predecessor's checkpoint: scratch is on the dead rank's node, so the
	// restore must come from the PFS and cost DataRecovery time.
	cl := cluster.New(2, quietMachine())
	w := mpi.NewWorld(cl, 2, 1, false, 1, 0)

	// Rank 0 checkpoints as logical rank 7.
	p0 := w.Proc(0)
	c0, err := New(p0, Config{Mode: Single, Rank: 7, RankSet: true})
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("the payload")
	c0.Protect(0, SliceRegion{&data})
	if err := c0.Checkpoint("x", 1); err != nil {
		t.Fatal(err)
	}

	// Rank 1 (different node) restores logical rank 7's checkpoint.
	p1 := w.Proc(1)
	c1, err := New(p1, Config{Mode: Single, Rank: 7, RankSet: true})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(data))
	c1.Protect(0, SliceRegion{&out})
	if err := c1.Restart("x", 1); err != nil {
		t.Fatal(err)
	}
	if string(out) != "the payload" {
		t.Fatalf("restored %q", out)
	}
	if p1.Recorder().Get(trace.DataRecovery) <= 0 {
		t.Fatal("PFS restore must cost DataRecovery time")
	}
}

func TestRestartMissingVersion(t *testing.T) {
	runRanks(t, 1, func(p *mpi.Proc) error {
		c, _ := New(p, Config{Mode: Single})
		buf := []byte{1}
		c.Protect(0, SliceRegion{&buf})
		if err := c.Restart("x", 9); !errors.Is(err, ErrNoCheckpoint) {
			t.Errorf("expected ErrNoCheckpoint, got %v", err)
		}
		return nil
	})
}

func TestRestartLatest(t *testing.T) {
	runRanks(t, 1, func(p *mpi.Proc) error {
		c, _ := New(p, Config{Mode: Single})
		buf := []byte{0}
		c.Protect(0, SliceRegion{&buf})
		for v := 1; v <= 3; v++ {
			buf[0] = byte(v * 10)
			if err := c.Checkpoint("x", v); err != nil {
				return err
			}
		}
		buf[0] = 0
		v, err := c.RestartLatest("x")
		if err != nil {
			return err
		}
		if v != 3 || buf[0] != 30 {
			t.Errorf("RestartLatest: v=%d buf=%d", v, buf[0])
		}
		return nil
	})
}

func TestCollectiveRequiresComm(t *testing.T) {
	runRanks(t, 1, func(p *mpi.Proc) error {
		if _, err := New(p, Config{Mode: Collective}); err == nil {
			t.Error("collective mode without comm accepted")
		}
		return nil
	})
}

func TestSetRankRedirectsKeys(t *testing.T) {
	runRanks(t, 1, func(p *mpi.Proc) error {
		c, _ := New(p, Config{Mode: Single})
		buf := []byte{42}
		c.Protect(0, SliceRegion{&buf})
		if err := c.Checkpoint("x", 1); err != nil {
			return err
		}
		c.SetRank(c.Rank() + 1)
		if err := c.Restart("x", 1); !errors.Is(err, ErrNoCheckpoint) {
			t.Errorf("restart under new rank should miss, got %v", err)
		}
		c.SetRank(p.Rank())
		return c.Restart("x", 1)
	})
}

func TestUnregisteredRegionInBlobFails(t *testing.T) {
	runRanks(t, 1, func(p *mpi.Proc) error {
		c, _ := New(p, Config{Mode: Single})
		a := []byte{1}
		b := []byte{2}
		c.Protect(0, SliceRegion{&a})
		c.Protect(1, SliceRegion{&b})
		if err := c.Checkpoint("x", 1); err != nil {
			return err
		}
		c.Unprotect(1)
		if err := c.Restart("x", 1); err == nil {
			t.Error("restart with unregistered region succeeded")
		}
		return nil
	})
}

func TestSerializeRoundTripProperty(t *testing.T) {
	f := func(a, b []byte) bool {
		ok := true
		runRanks(t, 1, func(p *mpi.Proc) error {
			c, _ := New(p, Config{Mode: Single})
			ac := append([]byte(nil), a...)
			bc := append([]byte(nil), b...)
			c.Protect(0, SliceRegion{&ac})
			c.Protect(7, SliceRegion{&bc})
			if err := c.Checkpoint("p", 1); err != nil {
				ok = len(a) == 0 && len(b) == 0 // zero-size regions still allowed
				return nil
			}
			for i := range ac {
				ac[i] = 0
			}
			for i := range bc {
				bc[i] = 0
			}
			if err := c.Restart("p", 1); err != nil {
				ok = false
				return nil
			}
			ok = bytes.Equal(ac, a) && bytes.Equal(bc, b)
			return nil
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestModeString(t *testing.T) {
	if Collective.String() != "collective" || Single.String() != "single" {
		t.Fatal("mode strings wrong")
	}
}

func TestDropRemovesVersion(t *testing.T) {
	runRanks(t, 1, func(p *mpi.Proc) error {
		c, _ := New(p, Config{Mode: Single})
		buf := []byte{1}
		c.Protect(0, SliceRegion{&buf})
		if err := c.Checkpoint("x", 1); err != nil {
			return err
		}
		if !c.Available("x", 1) {
			t.Error("version 1 not available after checkpoint")
		}
		c.Drop("x", 1)
		if c.Available("x", 1) {
			t.Error("version 1 available after drop")
		}
		if err := c.Restart("x", 1); !errors.Is(err, ErrNoCheckpoint) {
			t.Errorf("restart after drop: %v", err)
		}
		return nil
	})
}

func TestGCBeforeKeepsRecentVersions(t *testing.T) {
	runRanks(t, 1, func(p *mpi.Proc) error {
		c, _ := New(p, Config{Mode: Single})
		buf := []byte{1}
		c.Protect(0, SliceRegion{&buf})
		for v := 0; v <= 5; v++ {
			if err := c.Checkpoint("x", v); err != nil {
				return err
			}
		}
		c.GCBefore("x", 4)
		for v := 0; v < 4; v++ {
			if c.Available("x", v) {
				t.Errorf("version %d survived GC", v)
			}
		}
		for v := 4; v <= 5; v++ {
			if !c.Available("x", v) {
				t.Errorf("version %d lost by GC", v)
			}
		}
		return c.Restart("x", 5)
	})
}

func TestAvailableMissing(t *testing.T) {
	runRanks(t, 1, func(p *mpi.Proc) error {
		c, _ := New(p, Config{Mode: Single})
		if c.Available("nope", 3) {
			t.Error("phantom checkpoint available")
		}
		return nil
	})
}

func TestCorruptCheckpointDetected(t *testing.T) {
	runRanks(t, 1, func(p *mpi.Proc) error {
		c, _ := New(p, Config{Mode: Single})
		buf := []byte("precious state")
		c.Protect(0, SliceRegion{&buf})
		if err := c.Checkpoint("x", 1); err != nil {
			return err
		}
		// Corrupt the stored copy in the PFS and drop scratch so the
		// restore must go through it.
		pfs := p.World().Cluster().PFS()
		key := dataKey("x", 1, c.Rank())
		blob, _, ok := pfs.Read(key, p.Now())
		if !ok {
			t.Fatal("checkpoint missing from PFS")
		}
		blob[len(blob)-1] ^= 0xFF
		pfs.Write(key, blob, p.Now())
		p.Node().ScratchDelete(key)

		err := c.Restart("x", 1)
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("restart of corrupted checkpoint: %v", err)
		}
		return nil
	})
}
