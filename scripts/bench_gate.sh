#!/bin/sh
# Simulator-throughput regression gate (see PERFORMANCE.md).
#
# Runs BenchmarkSimThroughput (tree engine) and BenchmarkSimThroughputFlat
# (legacy engine) at 256 ranks and enforces two bounds:
#
#   1. tree/flat speedup >= 5x — the tree engine's acceptance floor. This
#      ratio is machine-independent: both engines run on the same host.
#   2. tree events/sec >= 80% of the checked-in baseline, after scaling
#      the baseline by this machine's flat-engine speed relative to the
#      reference machine. The flat engine is frozen (it exists as the
#      executable spec), so its throughput is a pure machine-speed probe;
#      normalizing by it turns the absolute baseline into a relative
#      regression gate that works on slower CI hosts.
#
# Usage: scripts/bench_gate.sh [output-file]
#   output-file: where to tee the raw `go test -bench` output (default
#   bench-throughput.txt in the current directory; CI uploads it as an
#   artifact).
set -eu
cd "$(dirname "$0")/.."

out=${1:-bench-throughput.txt}
baseline=scripts/bench_baseline.txt

go test -run '^$' -bench 'BenchmarkSimThroughput(Flat)?$/ranks=256' \
    -benchtime=1s -count=3 ./internal/mpi/ | tee "$out"

events() {
    # benchstat-style line: "BenchmarkX/ranks=256-8  N  ns/op  V events/sec ..."
    # Take the best of the -count runs: max events/sec is the least noisy
    # estimate of what the engine can do (scheduler hiccups only subtract).
    awk -v pat="$1" '$0 ~ pat {
        for (i = 1; i < NF; i++) if ($(i+1) == "events/sec" && $i > best) best = $i
    } END { print best + 0 }' "$out"
}
base() {
    awk -v k="$1" '$1 == k { print $2 }' "$baseline"
}

tree_now=$(events '^BenchmarkSimThroughput/ranks=256')
flat_now=$(events '^BenchmarkSimThroughputFlat/ranks=256')
tree_base=$(base tree256)
flat_base=$(base flat256)

if [ "${tree_now:-0}" = "0" ] || [ "${flat_now:-0}" = "0" ]; then
    echo "bench_gate: could not parse events/sec from $out" >&2
    exit 2
fi

awk -v tn="$tree_now" -v fn="$flat_now" -v tb="$tree_base" -v fb="$flat_base" '
BEGIN {
    ratio = tn / fn
    printf "bench_gate: tree %.0f events/sec, flat %.0f events/sec, speedup %.1fx\n", tn, fn, ratio
    fail = 0
    if (ratio < 5.0) {
        printf "bench_gate: FAIL tree/flat speedup %.1fx below the 5x floor\n", ratio
        fail = 1
    }
    scale = fn / fb
    floor = 0.8 * tb * scale
    printf "bench_gate: machine speed %.2fx of reference; regression floor %.0f events/sec\n", scale, floor
    if (tn < floor) {
        printf "bench_gate: FAIL tree throughput %.0f below 80%% of scaled baseline %.0f\n", tn, tb * scale
        fail = 1
    }
    exit fail
}'
echo "bench_gate: ok"
