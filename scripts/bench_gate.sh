#!/bin/sh
# Simulator-throughput regression gate (see PERFORMANCE.md).
#
# Runs the BenchmarkSimThroughput family — tree engine under both
# execution modes plus the legacy flat engine — and enforces four bounds:
#
#   1. tree/flat speedup >= 5x at 256 ranks — the tree engine's
#      acceptance floor. Machine-independent: both engines run on the
#      same host.
#   2. tree events/sec at 256 ranks >= 80% of the checked-in baseline,
#      after scaling the baseline by this machine's flat-engine speed
#      relative to the reference machine. The flat engine is frozen (it
#      exists as the executable spec), so its throughput is a pure
#      machine-speed probe; normalizing by it turns the absolute baseline
#      into a relative regression gate that works on slower CI hosts.
#   3. pool/goroutine speedup at 4096 ranks — the worker-pool execution
#      mode must stay a strict win at the width it exists for. The floor
#      is GOMAXPROCS-aware: on a single core the measured story bounds
#      the ratio near ~1.2x (the pool saves run-queue churn and
#      allocations but still pays a park/resume handoff per blocking
#      point), so the floor is 1.05x with margin. On multicore hosts the
#      single-core bound does not transfer — the design-target ratio is
#      >= 3x but unmeasured on the reference machine (PERFORMANCE.md) —
#      so the gate only asserts no regression (floor 1.0x) rather than
#      applying the single-core number verbatim.
#   4. pool events/sec at 4096 ranks >= 80% of its machine-normalized
#      baseline — same construction as bound 2.
#
# Besides the raw `go test -bench` text, the gate emits a machine-readable
# bench-throughput.json ({"gomaxprocs": N, "cells": [...]}: one record per
# cell with events/sec, ns/rank-step, allocs/op, best of -count runs; the
# core count records which pool-gate floor applied) and prints a
# baseline-vs-current delta table, so CI artifacts carry the trend without
# re-parsing bench text.
#
# Usage: scripts/bench_gate.sh [output-file] [json-file]
#   output-file: where to tee the raw `go test -bench` output (default
#   bench-throughput.txt; CI uploads it as an artifact).
#   json-file: where to write the per-cell JSON (default
#   bench-throughput.json next to output-file).
set -eu
cd "$(dirname "$0")/.."

out=${1:-bench-throughput.txt}
json=${2:-bench-throughput.json}
baseline=scripts/bench_baseline.txt

# The effective parallelism the benchmarks ran with: GOMAXPROCS if the
# caller pinned it, otherwise the host's online core count. Picks the
# pool-gate floor and is recorded in the JSON artifact.
cores=${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)}

go test -run '^$' -bench 'BenchmarkSimThroughput(Pool|Flat)?$/ranks=(256|1024|4096)' \
    -benchtime=1s -count=3 ./internal/mpi/ | tee "$out"

awk -v jsonfile="$json" -v cores="$cores" '
# Pass 1: the baseline file (key events/sec).
FNR == NR {
    if ($0 !~ /^#/ && NF >= 2) base[$1] = $2
    next
}
# Pass 2: benchmark lines. Cell key = engine/exec + rank count; best of
# the -count runs per cell (max events/sec, min ns/rank-step and
# allocs/op: scheduler hiccups only subtract).
/^BenchmarkSimThroughput/ {
    if ($1 ~ /^BenchmarkSimThroughputFlat\//)      { eng = "flat"; exe = "goroutine"; fam = "flat" }
    else if ($1 ~ /^BenchmarkSimThroughputPool\//) { eng = "tree"; exe = "pool";      fam = "pool" }
    else                                           { eng = "tree"; exe = "goroutine"; fam = "tree" }
    match($1, /ranks=[0-9]+/)
    ranks = substr($1, RSTART + 6, RLENGTH - 6)
    cell = fam ranks
    ev = ns = al = ""
    for (i = 1; i < NF; i++) {
        if ($(i+1) == "events/sec")   ev = $i
        if ($(i+1) == "ns/rank-step") ns = $i
        if ($(i+1) == "allocs/op")    al = $i
    }
    if (ev == "") next
    if (!(cell in evs)) { order[++ncells] = cell; engine[cell] = eng; exec[cell] = exe; rank[cell] = ranks }
    if (ev + 0 > evs[cell] + 0) evs[cell] = ev
    if (nss[cell] == "" || ns + 0 < nss[cell] + 0) nss[cell] = ns
    if (als[cell] == "" || al + 0 < als[cell] + 0) als[cell] = al
}
END {
    # Machine-readable per-cell records for the CI trend artifact. The
    # gomaxprocs field records which pool-gate floor applied, so trend
    # consumers can separate single-core and multicore runs.
    printf "{\"gomaxprocs\": %d,\n \"cells\": [", cores > jsonfile
    for (i = 1; i <= ncells; i++) {
        c = order[i]
        printf "%s\n  {\"cell\": \"%s\", \"engine\": \"%s\", \"exec\": \"%s\", \"ranks\": %d, \"events_per_sec\": %.0f, \"ns_per_rank_step\": %.1f, \"allocs_per_op\": %d}", \
            (i > 1 ? "," : ""), c, engine[c], exec[c], rank[c], evs[c], nss[c], als[c] >> jsonfile
    }
    printf "\n]}\n" >> jsonfile

    if (evs["tree256"] + 0 == 0 || evs["flat256"] + 0 == 0 || \
        evs["tree4096"] + 0 == 0 || evs["pool4096"] + 0 == 0) {
        print "bench_gate: could not parse events/sec for all gated cells" > "/dev/stderr"
        exit 2
    }

    # Baseline-vs-current delta table (machine-normalized by the flat
    # probe, so the delta is meaningful on hosts other than the
    # reference machine; the flat row itself is the raw probe ratio).
    scale = evs["flat256"] / base["flat256"]
    printf "bench_gate: machine speed %.2fx of reference (flat probe)\n", scale
    printf "bench_gate: %-10s %12s %12s %8s\n", "cell", "baseline*", "current", "delta"
    for (i = 1; i <= ncells; i++) {
        c = order[i]
        if (!(c in base)) continue
        b = base[c] * (c == "flat256" ? 1 : scale)
        printf "bench_gate: %-10s %12.0f %12.0f %+7.1f%%\n", c, b, evs[c], 100 * (evs[c] - b) / b
    }

    fail = 0
    ratio = evs["tree256"] / evs["flat256"]
    printf "bench_gate: tree/flat speedup %.1fx (floor 5.0x)\n", ratio
    if (ratio < 5.0) {
        printf "bench_gate: FAIL tree/flat speedup %.1fx below the 5x floor\n", ratio
        fail = 1
    }
    if (evs["tree256"] < 0.8 * base["tree256"] * scale) {
        printf "bench_gate: FAIL tree256 throughput %.0f below 80%% of scaled baseline %.0f\n", \
            evs["tree256"], base["tree256"] * scale
        fail = 1
    }
    # The single-core measured story bounds the ratio near ~1.2x, so on
    # one core 1.05x is a meaningful floor with margin. On multicore the
    # modes scale differently (goroutine mode also overlaps ranks), so
    # the single-core number is not applied verbatim: the gate only
    # requires the pool not to regress below goroutine mode.
    pfloor = (cores + 0 <= 1) ? 1.05 : 1.0
    pratio = evs["pool4096"] / evs["tree4096"]
    printf "bench_gate: pool/goroutine speedup at 4096 ranks %.2fx (floor %.2fx, GOMAXPROCS=%d)\n", \
        pratio, pfloor, cores
    if (pratio < pfloor) {
        printf "bench_gate: FAIL pool/goroutine speedup %.2fx below the %.2fx floor\n", pratio, pfloor
        fail = 1
    }
    if (evs["pool4096"] < 0.8 * base["pool4096"] * scale) {
        printf "bench_gate: FAIL pool4096 throughput %.0f below 80%% of scaled baseline %.0f\n", \
            evs["pool4096"], base["pool4096"] * scale
        fail = 1
    }
    exit fail
}' "$baseline" "$out"
echo "bench_gate: ok"
