#!/bin/sh
# Full verification: build, vet, race-enabled tests, the observability
# overhead benchmarks, and an end-to-end obsreport smoke test. Supersedes
# `make check` for environments without make.
set -eux
cd "$(dirname "$0")/.."
go build ./...
go vet ./...
go test -race ./...

# Observability overhead: the same failure-injected Heatdis cell with
# recording off, on, and streaming (one iteration each; a smoke check
# that the instrumented paths stay healthy end to end).
go test -run '^$' -bench 'BenchmarkHeatdisObs' -benchtime 1x .

# Recovery-timeline pipeline: stream a failure-injected run's events and
# analyze them with obsreport (table and JSON forms).
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/heatdis -ranks 8 -data-mb 64 -iters 30 -interval 5 \
    -fail -stream -events "$tmp/events.jsonl"
go run ./cmd/obsreport "$tmp/events.jsonl" | grep -q 'unrepaired 0'
go run ./cmd/obsreport -json "$tmp/events.jsonl" > "$tmp/report.json"
grep -q '"failures_repaired": 1' "$tmp/report.json"
grep -q '"failures_unrepaired": 0' "$tmp/report.json"

# Chaos campaign: a short adversarial sweep over the full mode x app
# matrix under the race detector (kills inside checkpoint regions and
# flush windows, nested failures, correlated node loss, spare exhaustion
# with and without shrinking). Then replay a storm-shrink seed with its
# event log streamed, and cross-check that obsreport surfaces the shrink
# events and per-span shrunk-slot accounting.
go run -race ./cmd/chaos -seeds 36 -json "$tmp/campaign.json"
grep -q '"violated": 0' "$tmp/campaign.json"
go run ./cmd/chaos -seed 7 -json "$tmp/chaosrun.json" -events "$tmp/chaos-events.jsonl"
grep -q '"shrunk": 2' "$tmp/chaosrun.json"
go run ./cmd/obsreport "$tmp/chaos-events.jsonl" | grep -q 'shrink events: 2'
