#!/bin/sh
# Full verification, shared by `make check` and the CI workflow: build,
# lint, race-enabled tests, the observability and flush-scheduler
# benchmarks, an end-to-end obsreport smoke test, and the chaos campaign
# with pinned-seed replays.
#
# Usage: scripts/check.sh [section ...]
#   sections: build lint race bench perf report sweep chaos sdc
#             (default: all of the above; `vet` is an alias for lint)
#   nightly:  the full-depth tier on top of the default sections — the
#             CHAOS_NIGHTLY-gated O(10k) scale cells. Run explicitly
#             (`scripts/check.sh nightly`) or from the nightly CI job;
#             never part of the default list.
#
# Environment:
#   CHAOS_SEEDS  number of campaign seeds to sweep (default 36; CI's
#                per-commit job reduces this to 12, nightly runs raise it)
#
# Runs under `set -e`: the first failing command aborts the script with a
# non-zero exit, and the banner of the section it died in is the last one
# printed.
set -eu
cd "$(dirname "$0")/.."

CHAOS_SEEDS=${CHAOS_SEEDS:-36}

banner() {
    echo ""
    echo "==> $*"
}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

run_build() {
    banner "build: go build ./..."
    go build ./...
}

run_lint() {
    banner "lint: gofmt, go vet, staticcheck"
    unformatted=$(gofmt -l . 2>/dev/null)
    if [ -n "$unformatted" ]; then
        echo "gofmt needed on:"
        echo "$unformatted"
        exit 1
    fi
    go vet ./...
    # staticcheck is not vendored; CI's lint job installs it. Locally the
    # section degrades to gofmt + vet rather than failing the whole check
    # on a missing tool.
    if command -v staticcheck >/dev/null 2>&1; then
        staticcheck ./...
    else
        echo "staticcheck not installed; skipped (CI runs it — install with:"
        echo "  go install honnef.co/go/tools/cmd/staticcheck@latest)"
    fi
}

run_nightly() {
    # The full-depth tier: scale cells too slow for the per-commit loop.
    # CHAOS_NIGHTLY=1 un-gates TestScale8192HeatdisReplay — the worker-pool
    # O(10k) acceptance cell (8192 ranks, mid-run kill, byte-identical
    # replay pair) — and TestScale1024LocalizedStormReplay, the 1024-rank
    # localized-recovery storm (three kills absorbed by the spare + rehost
    # reserve under ExecPool, replay ledger byte-identical across replays).
    banner "nightly: O(10k) scale cells (CHAOS_NIGHTLY=1)"
    CHAOS_NIGHTLY=1 go test -run 'TestScale' -count=1 -timeout 55m ./internal/chaos/
}

run_race() {
    banner "race: go test -race ./..."
    go test -race ./...
}

run_bench() {
    # Observability overhead and flush scheduling: the same
    # failure-injected Heatdis cells with recording off/on/streaming and
    # with unscheduled vs windowed flushing (one iteration each; a smoke
    # check that the instrumented paths stay healthy end to end).
    banner "bench: BenchmarkHeatdisObs* + BenchmarkHeatdisFlushSched (1x)"
    go test -run '^$' -bench 'BenchmarkHeatdisObs|BenchmarkHeatdisFlushSched' -benchtime 1x .
}

run_perf() {
    # Simulator throughput regression gate: BenchmarkSimThroughput vs the
    # checked-in baseline (machine-speed normalized; see PERFORMANCE.md).
    banner "perf: BenchmarkSimThroughput regression gate"
    sh scripts/bench_gate.sh "$tmp/bench-throughput.txt"
}

run_report() {
    # Recovery-timeline pipeline: stream a failure-injected run's events
    # (with the flush scheduler enabled) and analyze them with obsreport.
    banner "report: heatdis -stream | obsreport"
    go run ./cmd/heatdis -ranks 8 -data-mb 64 -iters 30 -interval 5 \
        -fail -flush-window 2 -stream -events "$tmp/events.jsonl"
    go run ./cmd/obsreport "$tmp/events.jsonl" | grep -q 'unrepaired 0'
    go run ./cmd/obsreport -json "$tmp/events.jsonl" > "$tmp/report.json"
    grep -q '"failures_repaired": 1' "$tmp/report.json"
    grep -q '"failures_unrepaired": 0' "$tmp/report.json"
}

run_sweep() {
    # Cross-run sweep analytics + timeline rendering: persist a 12-seed
    # campaign with -out, aggregate it with obsreport -sweep, and render
    # the pinned storm-shrink seed's Gantt twice (byte-identical by the
    # replay invariant) plus the SVG figure form.
    banner "sweep: chaos -seeds 12 -out + obsreport -sweep"
    go run ./cmd/chaos -seeds 12 -out "$tmp/runs"
    test -f "$tmp/runs/manifest.json"
    go run ./cmd/obsreport -sweep "$tmp/runs" > "$tmp/sweep.txt"
    grep -q 'sweep: 12 runs' "$tmp/sweep.txt"
    grep -q 'per-(mode × app) phase durations' "$tmp/sweep.txt"
    grep -q 'storm-shrink' "$tmp/sweep.txt"
    # Seeds 10/11 land in sdc cells, so the sweep's SDC ledger must render.
    grep -q 'sdc: injected' "$tmp/sweep.txt"
    go run ./cmd/obsreport -json -sweep "$tmp/runs" | grep -q '"critical_path"'

    banner "sweep: seed 7 timeline (ASCII x2 + SVG)"
    go run ./cmd/obsreport -timeline "$tmp/runs/seed-7.jsonl" > "$tmp/tl1.txt"
    go run ./cmd/obsreport -timeline "$tmp/runs/seed-7.jsonl" > "$tmp/tl2.txt"
    cmp "$tmp/tl1.txt" "$tmp/tl2.txt"
    grep -q '(shrunk g' "$tmp/tl1.txt"
    go run ./cmd/figures -fig timeline -seed 7 > "$tmp/timeline.svg"
    grep -q '<svg' "$tmp/timeline.svg"
}

run_chaos() {
    # Chaos campaign: an adversarial sweep over the full mode x app matrix
    # under the race detector (kills inside checkpoint regions and flush
    # windows, nested failures, correlated node loss, spare exhaustion
    # with and without shrinking), with the flush scheduler on in every
    # cell. Then replay pinned seeds and cross-check their reports:
    #   seed 7  storm-shrink cell; obsreport must surface the shrink
    #           events and per-span shrunk-slot accounting
    #   seed 3  flush-mode cell with a node crash; the scheduler's
    #           queued/started accounting must replay exactly
    #   seed 9  storm-wave cell (heatdis, 32 ranks): multi-wave kill
    #           schedule past spare exhaustion — one mixed rebuild, then
    #           pure shrinks; final size and shrink count must replay
    #   seed 19 storm-wave cell (minimd): the allreduce-synchronized
    #           flush-storm cell that caught the arrival-order PFS
    #           congestion leak; its flush ledger must replay exactly
    #   seed 14 localized cell (heatdis): single kill under the
    #           message-logging strategy — the replacement's replay
    #           ledger must replay exactly, and the pool exec mode must
    #           produce a bitwise-identical report (cross-exec pin)
    #   seed 31 localized-shrink cell (minimd): three kills absorbed by
    #           one spare plus the two-rank rehost reserve, so the log
    #           stays live and recovery stays localized throughout
    banner "chaos: $CHAOS_SEEDS-seed campaign under -race"
    go run -race ./cmd/chaos -seeds "$CHAOS_SEEDS" -json "$tmp/campaign.json"
    grep -q '"violated": 0' "$tmp/campaign.json"

    banner "chaos: seed 7 replay (storm shrink)"
    go run ./cmd/chaos -seed 7 -json "$tmp/chaosrun.json" -events "$tmp/chaos-events.jsonl"
    grep -q '"shrunk": 2' "$tmp/chaosrun.json"
    go run ./cmd/obsreport "$tmp/chaos-events.jsonl" | grep -q 'shrink events: 2'

    banner "chaos: seed 3 replay (flush scheduler, node crash)"
    go run ./cmd/chaos -seed 3 -json "$tmp/flushrun.json"
    grep -q '"flushes_queued": 20' "$tmp/flushrun.json"
    # One queued flush's start coincides exactly with the node crash;
    # strictly-lazy commitment (flushsched.go advanceLocked) discards it
    # rather than racing it into the window, so 19 of 20 start.
    grep -q '"flushes_started": 19' "$tmp/flushrun.json"

    banner "chaos: seed 9 replay (storm wave, heatdis)"
    go run ./cmd/chaos -seed 9 -json "$tmp/stormrun.json" -events "$tmp/storm-events.jsonl"
    grep -q '"shrunk": 3' "$tmp/stormrun.json"
    grep -q '"mpi_shrinks": 2' "$tmp/stormrun.json"
    grep -q '"final_size": 29' "$tmp/stormrun.json"
    go run ./cmd/obsreport "$tmp/storm-events.jsonl" | grep -q 'shrink events: 2'

    # The campaign matrix has grown since this seed was pinned, remapping
    # seed 19's natural cell; -mode/-app re-pin the original cell (the RNG
    # stream depends only on the seed, so the schedule replays unchanged).
    banner "chaos: seed 19 replay (storm wave, minimd flush storm)"
    go run ./cmd/chaos -seed 19 -mode storm-wave -app minimd -json "$tmp/stormrun2.json"
    grep -q '"shrunk": 5' "$tmp/stormrun2.json"
    grep -q '"mpi_shrinks": 3' "$tmp/stormrun2.json"
    grep -q '"flushes_queued": 175' "$tmp/stormrun2.json"
    grep -q '"flushes_started": 175' "$tmp/stormrun2.json"

    banner "chaos: seed 14 replay (localized, heatdis; goroutine vs pool)"
    go run ./cmd/chaos -seed 14 -json "$tmp/loc.json"
    grep -q '"failures_repaired": 1' "$tmp/loc.json"
    grep -q '"msgs_logged": 168' "$tmp/loc.json"
    grep -q '"msgs_replayed": 19' "$tmp/loc.json"
    grep -q '"msgs_trimmed": 161' "$tmp/loc.json"
    # Exec scheduling must not change the virtual outcome: the pool-mode
    # report is bitwise identical apart from the echoed -exec override.
    go run ./cmd/chaos -seed 14 -exec pool -json "$tmp/loc-pool.json"
    grep -v '"exec"' "$tmp/loc-pool.json" | cmp - "$tmp/loc.json"

    banner "chaos: seed 31 replay (localized-shrink, minimd rehost reserve)"
    go run ./cmd/chaos -seed 31 -json "$tmp/loc-shrink.json"
    grep -q '"failures_repaired": 3' "$tmp/loc-shrink.json"
    grep -q '"rehosts": 2' "$tmp/loc-shrink.json"
    grep -q '"msgs_replayed": 42' "$tmp/loc-shrink.json"
    # Reserve substitutions kept the communicator uncompacted.
    grep -q '"shrunk": 0' "$tmp/loc-shrink.json"
    grep -q '"final_size": 4' "$tmp/loc-shrink.json"

    # The O(1k)-rank smoke cell: the storm-wave family at CHAOS_SCALE=1024.
    # Multi-wave spare exhaustion, shrink repairs, and a 1024-rank flush
    # ledger must replay exactly at this width too (the tree collective
    # engine's scaled regression cell; the 4096-rank acceptance cell runs
    # in the race section via TestScale4096HeatdisReplay).
    banner "chaos: seed 9 at 1024 ranks (CHAOS_SCALE=1024 smoke)"
    go run ./cmd/chaos -seed 9 -storm-ranks 1024 -timeout 5m -json "$tmp/storm1024.json"
    grep -q '"shrunk": 3' "$tmp/storm1024.json"
    grep -q '"mpi_shrinks": 2' "$tmp/storm1024.json"
    grep -q '"final_size": 1021' "$tmp/storm1024.json"
    grep -q '"flushes_queued": 4243' "$tmp/storm1024.json"
    grep -q '"flushes_started": 4243' "$tmp/storm1024.json"
}

run_sdc() {
    # Silent-data-corruption layer: replay pinned seeds from the four sdc
    # campaign modes and cross-check the flip ledger, then regenerate the
    # detection-coverage × overhead matrix and assert the escalation
    # ladder's endpoints (the ladder ordering itself is enforced inside
    # `figures -fig sdc`, which exits non-zero on a violation):
    #   seed 10 sdc-region cell (heatdis, replay policy): the drawn flip
    #           is in-bounds, so it must escape the validator and be
    #           accounted as escaped, not detected
    #   seed 25 sdc-vote cell (minimd): duplicate-and-vote catches the
    #           bitwise divergence and corrects it
    #   seed 12 sdc-blob cell (heatdis): the CRC rejects the corrupted
    #           checkpoint blob and recovery falls back to the previous
    #           good version
    #   seed 27 sdc-mixed cell (minimd): a rank kill and a bit flip in
    #           the same run — both the Fenix repair and the SDC
    #           correction must land
    banner "sdc: seed 10 replay (sdc-region escape accounting)"
    go run ./cmd/chaos -seed 10 -json "$tmp/sdcregion.json"
    grep -q '"flips_fired": 1' "$tmp/sdcregion.json"
    grep -q '"sdc_injected": 1' "$tmp/sdcregion.json"
    grep -q '"sdc_escaped": 1' "$tmp/sdcregion.json"

    banner "sdc: seed 25 replay (sdc-vote correction)"
    go run ./cmd/chaos -seed 25 -json "$tmp/sdcvote.json" -events "$tmp/sdc-events.jsonl"
    grep -q '"sdc_detected": 1' "$tmp/sdcvote.json"
    grep -q '"sdc_corrected": 1' "$tmp/sdcvote.json"
    go run ./cmd/obsreport "$tmp/sdc-events.jsonl" | grep -q 'sdc: injected 1, detected 1, corrected 1'

    banner "sdc: seed 12 replay (sdc-blob checkpoint rejection)"
    go run ./cmd/chaos -seed 12 -json "$tmp/sdcblob.json"
    grep -q '"sdc_detected": 1' "$tmp/sdcblob.json"
    grep -q '"sdc_corrected": 1' "$tmp/sdcblob.json"

    banner "sdc: seed 27 replay (sdc-mixed kill + flip)"
    go run ./cmd/chaos -seed 27 -json "$tmp/sdcmixed.json"
    grep -q '"failures_repaired": 1' "$tmp/sdcmixed.json"
    grep -q '"sdc_detected": 1' "$tmp/sdcmixed.json"
    grep -q '"sdc_corrected": 1' "$tmp/sdcmixed.json"

    banner "sdc: figures -fig sdc -quick (coverage ladder)"
    go run ./cmd/figures -fig sdc -quick > "$tmp/sdc.txt"
    # Unprotected cells detect nothing; vote cells reach full coverage.
    grep -q 'heatdis	none	.*	0.000	' "$tmp/sdc.txt"
    grep -q 'heatdis	vote	.*	1.000	' "$tmp/sdc.txt"
    grep -q 'minimd	vote	.*	1.000	' "$tmp/sdc.txt"
}

sections=${*:-"build lint race bench perf report sweep chaos sdc"}
for s in $sections; do
    case "$s" in
    build)    run_build ;;
    lint|vet) run_lint ;;
    race)     run_race ;;
    bench)    run_bench ;;
    perf)     run_perf ;;
    report)   run_report ;;
    sweep)    run_sweep ;;
    chaos)    run_chaos ;;
    sdc)      run_sdc ;;
    nightly)  run_nightly ;;
    *)
        echo "unknown section: $s (want build|lint|race|bench|perf|report|sweep|chaos|sdc|nightly)" >&2
        exit 2
        ;;
    esac
done

banner "all sections passed: $sections"
